package cchunter

import (
	"context"
	"fmt"
	"time"

	"cchunter/internal/auditor"
	"cchunter/internal/channels"
	"cchunter/internal/core"
	"cchunter/internal/faults"
	"cchunter/internal/mitigate"
	"cchunter/internal/recorder"
	"cchunter/internal/ring"
	"cchunter/internal/runner"
	"cchunter/internal/shard"
	"cchunter/internal/sim"
	"cchunter/internal/stream"
	"cchunter/internal/trace"
	"cchunter/internal/workload"
)

// Scenario describes one experiment: a machine, at most one covert
// channel, and any benign workloads. The zero value plus a Channel is
// runnable; unset fields take paper-calibrated defaults.
type Scenario struct {
	// Channel selects the covert channel (default ChannelNone).
	Channel Channel
	// BandwidthBPS is the channel bandwidth in bits per second
	// (default 1000, ignored for ChannelNone).
	BandwidthBPS float64
	// Message is the bit pattern to transmit; when nil, a 64-bit
	// random message derived from Seed is used.
	Message []int
	// CacheSets is the cache channel's total set count across G1 and
	// G0 (default 512).
	CacheSets int
	// CacheRounds overrides the channel's prime/probe rounds per bit
	// (0 = adapt to the bit slot).
	CacheRounds int
	// Workloads names benign programs (see WorkloadNames) that run
	// alongside; they are placed pairwise onto the cores after the
	// channel's, each pair sharing a core as hyperthreads (the
	// paper's §VI-D arrangement).
	Workloads []string
	// CoScheduled names workloads that time-share the covert channel's
	// own hardware contexts (pinned to contexts 0 and 1 alternately,
	// multiplexed by the OS quantum). Their cache traffic lands in the
	// channel's L2 and dilutes the conflict-miss train — the noise
	// regime of the paper's low-bandwidth study (§VI-A).
	CoScheduled []string
	// Background is the number of light noise processes, satisfying
	// the threat model's "at least three other active processes"
	// (default 3; set to -1 for none).
	Background int
	// ChannelStartQuanta delays the covert channel's first bit slot by
	// this many OS quanta of benign-only observation — the mid-run
	// channel-onset regime the streaming CUSUM detectors estimate.
	ChannelStartQuanta int
	// DurationQuanta is the observation length in OS time quanta.
	// Default: enough quanta to cover the whole message plus one,
	// after any ChannelStartQuanta delay.
	DurationQuanta int
	// QuantumCycles overrides the OS time quantum (default: the
	// paper's 0.1 s = 250M cycles at 2.5 GHz).
	QuantumCycles uint64
	// ObservationDivisor splits each quantum into finer oscillation
	// observation windows (§VI-A); default 1.
	ObservationDivisor int
	// IdealTracker selects the exact LRU-stack conflict tracker
	// instead of the practical generation/Bloom design.
	IdealTracker bool
	// MigrationProb is the per-quantum process migration probability
	// for unpinned processes.
	MigrationProb float64
	// EvasionNoise makes the bus trojan camouflage '0' slots with
	// random-intensity bursts (the §III evasion strategy); see the
	// evasion experiment.
	EvasionNoise float64
	// EvaderJitter arms the adaptive evader's period jitter: each bit
	// slot starts at a keyed pseudo-random offset of up to this fraction
	// of the slot (0..0.5). Both endpoints derive the same offsets from
	// the protocol seed, so the channel stays synchronized while the
	// inter-burst period stops being constant.
	EvaderJitter float64
	// EvaderDuty arms the adaptive evader's amplitude duty cycle: the
	// trojan thins its contention generation to this fraction of full
	// intensity (0 = off, otherwise (0,1]). Lower duty collapses the
	// per-Δt event densities the burst detector keys on — at the cost
	// of channel reliability. See the evasion-frontier experiment.
	EvaderDuty float64
	// FECFrame wraps the message in the channels' two-layer FEC framing
	// (Berger-checked 8+4 words plus one XOR parity word per group of
	// four): the trojan transmits the coded stream and the spy's decode
	// is corrected back to data bits before BitErrors is computed.
	FECFrame bool
	// Mitigation applies a post-detection defense for the whole run:
	// "" (none), "buslimit" (split-lock rate limiting), "partition"
	// (L2 way-partitioning per context), "tdm" (time-multiplexed
	// dividers), or "clockfuzz" (fuzzy time). See internal/mitigate.
	Mitigation string
	// Faults perturbs the event stream between the hardware units and
	// the CC-Auditor, modelling a degraded sensor path (dropped events,
	// timestamp jitter, context corruption, saturation — see
	// internal/faults). The zero value leaves the run bit-for-bit
	// identical to one without the injector.
	Faults FaultConfig
	// Metrics, when non-nil, instruments the whole pipeline — engine,
	// event delivery, fault injector, auditor, detectors — and attaches
	// a snapshot to Result.Report.Metrics. Metrics never influence any
	// verdict: runs are byte-identical with and without a registry (the
	// golden-verdict suite pins this). Nil disables recording at
	// near-zero cost.
	Metrics *MetricsRegistry
	// Seed drives every random choice in the scenario.
	Seed uint64
	// RecordRaw additionally captures the full undeduplicated event
	// train (memory-hungry on long runs; used by trace dumps and the
	// Figure 4 event-train plots).
	RecordRaw bool
	// Detector overrides parts of the detection configuration; leave
	// zero for paper defaults.
	Detector *DetectorOverrides
	// Stream runs detection in streaming mode: the auditor's buffers
	// are drained continuously as events arrive, memory stays bounded
	// by the observation window instead of the run length, and the
	// final Report's verdict fields are byte-identical to the batch
	// path. The Report additionally carries a Streaming evidence block
	// (channel onset estimates, retention high-water marks). Trade-off:
	// the per-quantum record and conflict-train fields of Result are
	// consumed by the stream and come back empty or trimmed.
	Stream bool
	// Watchdog bounds the analysis stage's wall clock and converts an
	// analysis panic or overrun into a degraded verdict (Report.Failure
	// set, Confidence zero) instead of a crashed run. Zero disables
	// supervision, leaving the run byte-identical to one without it.
	Watchdog time.Duration
	// FlightEvents arms the flight recorder: a ring of the last N raw
	// events (negative = default capacity), captured into Result.Flight
	// after the verdict for deterministic offline replay (see cctrace
	// replay). Zero disables it.
	FlightEvents int
	// Pipelined moves event delivery off the engine's execution path:
	// a shard conduit copies each batch into a recycled slab and ships
	// it through a bounded lock-free SPSC ring to a consumer goroutine
	// that owns the listeners (auditor, recorders), overlapping
	// simulation with auditing. The ring is FIFO and drained before
	// analysis, so every result is byte-identical to a synchronous run
	// (pinned by the conduit equivalence tests); this is the per-shard
	// delivery mode RunSharded and the experiments' shard lanes use.
	Pipelined bool
	// Slices, when > 1, splits this one run's observation quanta
	// across that many audit lanes: a shard splitter routes the
	// engine's time-ordered event stream at quantum-aligned boundaries
	// into per-slice SPSC conduits, each feeding a slice-local
	// auditor, and the slices merge deterministically before analysis
	// (records concatenate in slice order, integrity counters sum, raw
	// conflict captures replay serially through one dedup comparator).
	// A single long run then parallelizes its auditing instead of only
	// whole runs parallelizing against each other. Purely a throughput
	// knob: results are byte-identical at every slice count (pinned by
	// the slice-determinism tests and CI lane). Runs whose
	// configuration cannot satisfy the alignment invariant (a Δt not
	// dividing the quantum) and streaming runs degrade to one slice.
	Slices int

	// eventBatch overrides the simulator's event-delivery batch size
	// (0 = default, 1 = per-event callbacks). Unexported: batching is
	// observationally invisible, so only the equivalence regression
	// test has a reason to vary it.
	eventBatch int
}

// DetectorOverrides adjusts detection parameters without exposing the
// whole internal configuration surface.
type DetectorOverrides struct {
	// LikelihoodThreshold replaces the default 0.5 when non-zero.
	LikelihoodThreshold float64
	// PeakThreshold replaces the oscillation peak threshold (default
	// 0.5) when non-zero.
	PeakThreshold float64
	// WindowQuanta replaces the 512-quantum clustering window when
	// non-zero.
	WindowQuanta int
}

// Result is everything a Scenario run produces.
type Result struct {
	// Report is the CC-Hunter detection report.
	Report Report
	// Sent and Decoded are the transmitted and spy-decoded bits
	// (empty for ChannelNone).
	Sent, Decoded []int
	// BitErrors counts decoding errors — the channel's reliability.
	BitErrors int
	// PerBitSeries is the spy's per-bit observable: average memory
	// latency (bus, Figure 2), average division-loop latency
	// (divider, Figure 3), or G1/G0 access-time ratio (cache,
	// Figure 7).
	PerBitSeries []float64
	// BusHistogram and DivHistogram are the merged event density
	// histograms (Figure 6).
	BusHistogram, DivHistogram *Histogram
	// BusRecords and DivRecords are the per-quantum histograms.
	BusRecords, DivRecords []QuantumHistogram
	// ConflictTrain is the auditor's deduplicated conflict-miss train
	// (Figure 8a).
	ConflictTrain *Train
	// RawTrain is the full event train when RecordRaw was set.
	RawTrain *Train
	// FaultStats holds the sensor fault injector's counters; nil when
	// the run had a pristine sensor path (Scenario.Faults zero).
	FaultStats *FaultStats
	// Flight is the flight recorder's capture; nil unless
	// Scenario.FlightEvents armed it.
	Flight *recorder.Flight
	// EndCycle is the simulated duration.
	EndCycle uint64
	// QuantumCycles echoes the quantum used.
	QuantumCycles uint64
	// Contexts is the machine's hardware context count.
	Contexts int
}

// WorkloadNames lists the benign workloads a Scenario can name.
func WorkloadNames() []string {
	all := workload.All()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	// Deterministic order for display.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Run executes the scenario to completion and analyzes it.
func (sc Scenario) Run() (*Result, error) {
	cfg, err := sc.normalize()
	if err != nil {
		return nil, err
	}

	simCfg := sim.DefaultConfig()
	simCfg.QuantumCycles = cfg.QuantumCycles
	simCfg.Seed = cfg.Seed
	simCfg.MigrationProb = cfg.MigrationProb
	if cfg.IdealTracker {
		simCfg.Tracker = sim.TrackerIdeal
	}
	switch sc.Mitigation {
	case "":
	case "buslimit":
		// Allow a handful of split locks per 100k-cycle window; covert
		// transmission needs ~20.
		simCfg.Mitigations.BusLimiter = mitigate.NewBusLockLimiter(
			simCfg.Contexts(), 100_000, 2, 200_000)
	case "partition":
		// One partition group per hardware context (each context gets
		// 1 of 8 ways): no context can ever evict another's blocks —
		// Partition-Locking's guarantee, at Partition-Locking's cost.
		simCfg.Mitigations.Partition = mitigate.NewCachePartition(simCfg.Contexts(), nil)
	case "tdm":
		// Exclusive 10k-cycle divider epochs per hyperthread: cross-
		// context divider contention becomes impossible.
		simCfg.Mitigations.DividerTDM = mitigate.NewDividerTDM(10_000)
	case "clockfuzz":
		// Fuzz granularity must be commensurate with the bit slot —
		// spies average many samples per bit, which defeats any
		// fine-grained unbiased noise (Hu fuzzed 1–19 ms interrupts
		// against ms-scale channels for the same reason). Half a slot
		// of quantization plus a quarter slot of jitter leaves nothing
		// to average.
		slot := uint64(2_500_000_000 / cfg.BandwidthBPS)
		q := slot / 2
		if q < 500 {
			q = 500
		}
		simCfg.Mitigations.Fuzz = mitigate.NewClockFuzz(q, q/2, cfg.Seed)
	default:
		return nil, fmt.Errorf("cchunter: unknown mitigation %q", sc.Mitigation)
	}
	simCfg.Faults = faults.Config(sc.Faults)
	simCfg.EventBatch = sc.eventBatch
	simCfg.Metrics = sc.Metrics
	if sc.Channel == ChannelRingInterconnect {
		// The ring interconnect only exists for the channel that needs
		// it: every other scenario stays bit-for-bit identical to a
		// ring-less machine.
		simCfg.Ring = ring.DefaultConfig()
	}
	system, err := sim.New(simCfg)
	if err != nil {
		return nil, fmt.Errorf("cchunter: building machine: %w", err)
	}
	defer system.Close()

	aud, err := auditor.New(auditor.DefaultConfig(cfg.QuantumCycles))
	if err != nil {
		return nil, fmt.Errorf("cchunter: building auditor: %w", err)
	}
	// The auditor has two monitoring slots (§V-A); program them with
	// the pair that covers this scenario's channel.
	kinds := sc.monitorKinds()
	for _, k := range kinds {
		if err := aud.Monitor(k, core.DefaultDeltaT(k)); err != nil {
			return nil, fmt.Errorf("cchunter: monitoring %v: %w", k, err)
		}
	}
	if err := aud.MonitorConflicts(); err != nil {
		return nil, fmt.Errorf("cchunter: monitoring conflicts: %w", err)
	}
	aud.Instrument(sc.Metrics)

	detCfg := core.DefaultDetectorConfig(cfg.QuantumCycles, simCfg.Contexts())
	detCfg.ObservationDivisor = cfg.ObservationDivisor
	detCfg.Metrics = sc.Metrics
	if o := sc.Detector; o != nil {
		if o.LikelihoodThreshold > 0 {
			detCfg.Burst.LikelihoodThreshold = o.LikelihoodThreshold
		}
		if o.PeakThreshold > 0 {
			detCfg.Oscillation.PeakThreshold = o.PeakThreshold
		}
		if o.WindowQuanta > 0 {
			detCfg.Burst.WindowQuanta = o.WindowQuanta
		}
	}

	end := uint64(cfg.DurationQuanta) * cfg.QuantumCycles

	// Streaming mode interposes the daemon between simulator and
	// auditor; it forwards every event and drains continuously.
	// Quantum-sliced mode replaces the auditor with a splitter fanning
	// the stream across slice-local auditors (merged before analysis).
	var listeners trace.Tee
	var streamDet *stream.Detector
	var sliced *slicedAudit
	switch {
	case sc.Stream:
		streamDet = stream.New(aud, stream.Config{Detector: detCfg})
		listeners = append(listeners, streamDet)
	case sc.sliceCount(cfg) > 1:
		sliced, err = newSlicedAudit(sc.sliceCount(cfg), cfg, kinds, sc.Metrics, sc.eventBatch)
		if err != nil {
			return nil, fmt.Errorf("cchunter: slicing run: %w", err)
		}
		listeners = append(listeners, sliced.splitter)
	default:
		listeners = append(listeners, aud)
	}
	var flight *recorder.Recorder
	if sc.FlightEvents != 0 {
		flight = recorder.New(sc.FlightEvents)
		listeners = append(listeners, flight)
	}
	var raw *trace.Recorder
	if cfg.RecordRaw {
		raw = trace.NewRecorder()
		listeners = append(listeners, raw)
	}
	var conduit *shard.Conduit
	if sc.Pipelined && sliced == nil {
		// Pipelined delivery: the conduit is the engine's only
		// listener; the real consumers run on its goroutine and the
		// drain below is the sim → analysis barrier. A sliced run's
		// conduits live per lane instead — the splitter itself stays
		// on the engine thread so its routing cursor has one writer.
		conduit = shard.NewConduit(listeners, 0, sc.eventBatch)
		system.AddListener(conduit)
	} else {
		for _, l := range listeners {
			system.AddListener(l)
		}
	}

	res := &Result{
		Sent:          append([]int(nil), cfg.Message...),
		QuantumCycles: cfg.QuantumCycles,
		Contexts:      simCfg.Contexts(),
	}
	spyDone := sc.spawnChannel(system, cfg, res)
	var firstFreeCore int
	switch sc.Channel {
	case ChannelMemoryBus, ChannelSharedCache, ChannelRingInterconnect:
		firstFreeCore = 2 // trojan on core 0, spy on core 1
	case ChannelIntegerDivider, ChannelTLB:
		firstFreeCore = 1 // trojan+spy are hyperthreads of core 0
	default:
		firstFreeCore = 0
	}
	for i, name := range cfg.Workloads {
		spec, ok := workload.All()[name]
		if !ok {
			return nil, fmt.Errorf("cchunter: unknown workload %q", name)
		}
		ctx := (firstFreeCore+i/2)*simCfg.ThreadsPerCore + i%2
		if ctx >= simCfg.Contexts() {
			return nil, fmt.Errorf("cchunter: too many workloads for %d contexts", simCfg.Contexts())
		}
		system.Spawn(workload.New(spec, cfg.Seed+uint64(i)+10), sim.Pin(ctx))
	}
	for i, name := range sc.CoScheduled {
		spec, ok := workload.All()[name]
		if !ok {
			return nil, fmt.Errorf("cchunter: unknown co-scheduled workload %q", name)
		}
		system.Spawn(workload.New(spec, cfg.Seed+uint64(i)+50), sim.Pin(i%2))
	}
	for i := 0; i < cfg.Background; i++ {
		system.Spawn(workload.New(workload.Background(i), cfg.Seed+uint64(i)+100))
	}

	simSpan := sc.Metrics.Timer("scenario.sim_ns").Start()
	system.Run(end)
	if conduit != nil {
		conduit.Drain()
	}
	if sliced != nil {
		// Quiesce the lanes in slice order and stitch the slice-local
		// auditors into the one the detector analyzes.
		merged, mErr := sliced.finish(end)
		if mErr != nil {
			return nil, fmt.Errorf("cchunter: merging slices: %w", mErr)
		}
		aud = merged
	}
	simSpan.End()

	if fs, ok := system.FaultStats(); ok {
		// The injector self-reports its drops; fold them into every
		// verdict's degradation diagnostics.
		detCfg.UpstreamLossRate = fs.LossRate()
		if streamDet != nil {
			streamDet.SetUpstreamLoss(fs.LossRate())
		}
		stats := FaultStats(fs)
		res.FaultStats = &stats
	}
	anSpan := sc.Metrics.Timer("scenario.analyze_ns").Start()
	analyze := func(context.Context) (interface{}, error) {
		if streamDet != nil {
			return streamDet.Finalize(end), nil
		}
		det := core.NewDetector(aud, detCfg)
		rep := det.Analyze(end)
		det.Release()
		return rep, nil
	}
	degraded := false
	if sc.Watchdog > 0 {
		// Supervised analysis: a panicking or overrunning detector
		// yields a degraded verdict and the run still completes.
		v, err := runner.Supervise(context.Background(), "scenario-analyze",
			sc.Watchdog, sc.Metrics, analyze)
		if err != nil {
			res.Report = core.DegradedReport(err.Error())
			degraded = true
		} else {
			res.Report = v.(core.Report)
		}
	} else {
		v, _ := analyze(context.Background())
		res.Report = v.(core.Report)
	}
	anSpan.End()
	if sc.Metrics != nil {
		// Re-snapshot after the analyze span closed so the attached
		// metrics include the full stage-time picture.
		res.Report.Metrics = sc.Metrics.Snapshot()
	}
	if flight != nil {
		reason := "no-detection"
		switch {
		case res.Report.Failed():
			reason = "detector-failure"
		case res.Report.Detected:
			reason = "detection"
		}
		var metaKinds []trace.Kind
		switch sc.Channel {
		case ChannelRingInterconnect, ChannelTLB:
			// Non-default monitoring pair: the replayer must program the
			// same slots. The classic pair stays implicit so pre-existing
			// flights (and their byte-identical captures) keep replaying.
			metaKinds = kinds
		}
		f := flight.Capture(reason, recorder.Meta{
			Seed:               cfg.Seed,
			QuantumCycles:      cfg.QuantumCycles,
			Contexts:           simCfg.Contexts(),
			ObservationDivisor: cfg.ObservationDivisor,
			EndCycle:           end,
			Kinds:              metaKinds,
		})
		res.Flight = &f
	}

	spyDone(res)
	if sc.FECFrame && sc.Channel != ChannelNone && sc.Channel != "" {
		// The spy decoded the coded stream; run the FEC decoder over each
		// complete coded block so BitErrors counts data-bit errors.
		res.Sent = append([]int(nil), cfg.DataBits...)
		res.Decoded = decodeFECStream(res.Decoded, len(cfg.Message), len(cfg.DataBits))
	}
	res.BitErrors = repeatedBitErrors(res.Sent, res.Decoded)
	if sc.Channel == ChannelNone {
		res.Sent, res.Decoded, res.BitErrors = nil, nil, 0
	}
	if !degraded {
		// After a watchdog abandonment the stuck analysis goroutine may
		// still own the auditor; leave the diagnostic histogram/train
		// fields empty rather than race it for them.
		res.BusHistogram = aud.MergedHistogram(trace.KindBusLock)
		res.DivHistogram = aud.MergedHistogram(trace.KindDivContention)
		res.BusRecords = aud.Histograms(trace.KindBusLock)
		res.DivRecords = aud.Histograms(trace.KindDivContention)
		res.ConflictTrain = aud.ConflictTrain()
	}
	if raw != nil {
		res.RawTrain = raw.Train()
	}
	res.EndCycle = end
	return res, nil
}

// normalized carries a Scenario with every default resolved.
type normalized struct {
	Message            []int
	DataBits           []int // pre-FEC message when FECFrame is set
	Workloads          []string
	Background         int
	ChannelStartQuanta int
	DurationQuanta     int
	QuantumCycles      uint64
	ObservationDivisor int
	IdealTracker       bool
	MigrationProb      float64
	Seed               uint64
	RecordRaw          bool
	BandwidthBPS       float64
	CacheSets          int
}

func (sc Scenario) normalize() (normalized, error) {
	cfg := normalized{
		Message:            sc.Message,
		Workloads:          sc.Workloads,
		Background:         sc.Background,
		ChannelStartQuanta: sc.ChannelStartQuanta,
		DurationQuanta:     sc.DurationQuanta,
		QuantumCycles:      sc.QuantumCycles,
		ObservationDivisor: sc.ObservationDivisor,
		IdealTracker:       sc.IdealTracker,
		MigrationProb:      sc.MigrationProb,
		Seed:               sc.Seed,
		RecordRaw:          sc.RecordRaw,
		BandwidthBPS:       sc.BandwidthBPS,
		CacheSets:          sc.CacheSets,
	}
	switch sc.Channel {
	case "", ChannelNone, ChannelMemoryBus, ChannelIntegerDivider, ChannelSharedCache,
		ChannelRingInterconnect, ChannelTLB:
	default:
		return cfg, fmt.Errorf("cchunter: unknown channel %q", sc.Channel)
	}
	if sc.EvaderJitter < 0 || sc.EvaderJitter > 0.5 {
		return cfg, fmt.Errorf("cchunter: EvaderJitter %v outside [0, 0.5]", sc.EvaderJitter)
	}
	if sc.EvaderDuty < 0 || sc.EvaderDuty > 1 {
		return cfg, fmt.Errorf("cchunter: EvaderDuty %v outside [0, 1]", sc.EvaderDuty)
	}
	if cfg.BandwidthBPS == 0 {
		cfg.BandwidthBPS = 1000
	}
	if cfg.BandwidthBPS < 0 {
		return cfg, fmt.Errorf("cchunter: negative bandwidth")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Message == nil {
		cfg.Message = RandomMessage(64, cfg.Seed)
	}
	if sc.FECFrame {
		// The channel carries the coded stream; the data bits come back
		// out of the spy's decode after FEC correction.
		cfg.DataBits = cfg.Message
		cfg.Message = channels.FECEncode(cfg.Message)
	}
	if cfg.CacheSets == 0 {
		cfg.CacheSets = 512
	}
	if cfg.Background == 0 {
		cfg.Background = 3
	} else if cfg.Background < 0 {
		cfg.Background = 0
	}
	if cfg.QuantumCycles == 0 {
		cfg.QuantumCycles = 250_000_000
	}
	if cfg.ObservationDivisor <= 0 {
		cfg.ObservationDivisor = 1
	}
	if cfg.ChannelStartQuanta < 0 {
		cfg.ChannelStartQuanta = 0
	}
	if cfg.DurationQuanta <= 0 {
		clock := 2_500_000_000.0
		slot := clock / cfg.BandwidthBPS
		need := slot * float64(len(cfg.Message)+2)
		cfg.DurationQuanta = int(need/float64(cfg.QuantumCycles)) + 1 + cfg.ChannelStartQuanta
		if cfg.DurationQuanta < 4 {
			cfg.DurationQuanta = 4 // recurrence needs several quanta
		}
	}
	return cfg, nil
}

// monitorKinds returns the burst-event pair this scenario programs into
// the CC-Auditor's two monitoring slots. The classic channels keep the
// paper's bus + divider pair (so their recorded runs stay byte-
// identical); the ring and TLB channels trade one slot for their own
// indicator event.
func (sc Scenario) monitorKinds() []trace.Kind {
	switch sc.Channel {
	case ChannelRingInterconnect:
		return []trace.Kind{trace.KindBusLock, trace.KindRingContention}
	case ChannelTLB:
		return []trace.Kind{trace.KindDivContention, trace.KindTLBConflict}
	}
	return []trace.Kind{trace.KindBusLock, trace.KindDivContention}
}

// decodeFECStream splits the spy's decoded bit stream into complete
// coded blocks of blockLen bits and FEC-decodes each back to dataLen
// data bits; a trailing partial block is dropped.
func decodeFECStream(coded []int, blockLen, dataLen int) []int {
	if blockLen <= 0 {
		return nil
	}
	var data []int
	for off := 0; off+blockLen <= len(coded); off += blockLen {
		d, _, _ := channels.FECDecode(coded[off:off+blockLen], dataLen)
		data = append(data, d...)
	}
	return data
}

// repeatedBitErrors compares the decoded stream against the message
// repeated as often as the trojan sent it.
func repeatedBitErrors(sent, decoded []int) int {
	if len(sent) == 0 {
		return len(decoded)
	}
	errs := 0
	for i, d := range decoded {
		if d != sent[i%len(sent)] {
			errs++
		}
	}
	return errs
}

// spawnChannel wires the trojan/spy pair for the selected channel and
// returns a closure that harvests the spy's observables into the
// result after the run.
func (sc Scenario) spawnChannel(system *sim.System, cfg normalized, res *Result) func(*Result) {
	// The trojan exfiltrates continuously (Repeat): detection's
	// recurrence step needs bursts across multiple OS time quanta, and
	// a real spy keeps listening for as long as it can.
	proto := channels.Protocol{
		Message: cfg.Message,
		BPS:     cfg.BandwidthBPS,
		Start:   uint64(cfg.ChannelStartQuanta) * cfg.QuantumCycles,
		Seed:    cfg.Seed,
		Repeat:  true,
		Evader: channels.Evader{
			JitterFrac: sc.EvaderJitter,
			DutyFrac:   sc.EvaderDuty,
		},
	}
	switch sc.Channel {
	case ChannelMemoryBus:
		c := channels.DefaultBusConfig(cfg.Message, cfg.BandwidthBPS)
		c.Protocol = proto
		c.EvasionNoise = sc.EvasionNoise
		spy := channels.NewBusSpy(c)
		system.Spawn(channels.NewBusTrojan(c), sim.Pin(0))
		system.Spawn(spy, sim.Pin(2))
		return func(r *Result) {
			r.Decoded = spy.Decoded()
			r.PerBitSeries = spy.PerBitLatency()
		}
	case ChannelIntegerDivider:
		c := channels.DefaultDivConfig(cfg.Message, cfg.BandwidthBPS)
		c.Protocol = proto
		spy := channels.NewDivSpy(c)
		system.Spawn(channels.NewDivTrojan(c), sim.Pin(0))
		system.Spawn(spy, sim.Pin(1))
		return func(r *Result) {
			r.Decoded = spy.Decoded()
			r.PerBitSeries = spy.PerBitLatency()
		}
	case ChannelSharedCache:
		c := channels.DefaultCacheConfig(cfg.Message, cfg.BandwidthBPS)
		c.Protocol = proto
		c.SetsUsed = cfg.CacheSets
		// Redundancy scales with the slot: low-bandwidth bits repeat
		// their prime/probe rounds (the "certain number of conflicts
		// needed to reliably transmit a bit", §VI-A), which also puts
		// several oscillation periods into each observation window.
		slot := uint64(2_500_000_000 / cfg.BandwidthBPS)
		roundCost := uint64(cfg.CacheSets) * 2_700 // fill + double probe
		rounds := sc.CacheRounds
		if rounds <= 0 {
			rounds = int(slot / (2 * roundCost))
		}
		if rounds < 1 {
			rounds = 1
		}
		if rounds > 8 {
			rounds = 8
		}
		c.RoundsPerBit = rounds
		c.MaxBurstCycles = uint64(rounds) * roundCost * 13 / 10
		spy := channels.NewCacheSpy(c)
		// Trojan and spy on different cores, sharing only the L2 — the
		// cross-VM arrangement of Xu et al.
		system.Spawn(channels.NewCacheTrojan(c), sim.Pin(0))
		system.Spawn(spy, sim.Pin(2))
		return func(r *Result) {
			r.Decoded = spy.Decoded()
			r.PerBitSeries = spy.PerBitRatio()
		}
	case ChannelRingInterconnect:
		c := channels.DefaultRingConfig(cfg.Message, cfg.BandwidthBPS)
		c.Protocol = proto
		spy := channels.NewRingSpy(c)
		// Different cores sharing only the ring path into one LLC slice:
		// trojan on core 0, spy on core 1, both routing clockwise into
		// the slice across the ring.
		system.Spawn(channels.NewRingTrojan(c), sim.Pin(0))
		system.Spawn(spy, sim.Pin(2))
		return func(r *Result) {
			r.Decoded = spy.Decoded()
			r.PerBitSeries = spy.PerBitSlowFrac()
		}
	case ChannelTLB:
		c := channels.DefaultTLBConfig(cfg.Message, cfg.BandwidthBPS)
		c.Protocol = proto
		spy := channels.NewTLBSpy(c)
		// The sTLB is per-core: trojan and spy are the two hyperthreads
		// of core 0, like the divider channel.
		system.Spawn(channels.NewTLBTrojan(c), sim.Pin(0))
		system.Spawn(spy, sim.Pin(1))
		return func(r *Result) {
			r.Decoded = spy.Decoded()
			r.PerBitSeries = spy.PerSymbolMissFrac()
		}
	default:
		return func(*Result) {}
	}
}
