package cchunter

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSlicedMatchesSerial pins quantum-slicing determinism at the
// whole-pipeline level: a run split across slice-local audit lanes
// must produce a deeply equal Result — verdict, decoded bits,
// histograms, conflict trains, fault counters — to the serial run, at
// every slice count. Reuses the batching equivalence corpus, which
// covers all channels plus a jittered sensor path (the case that
// forces the splitter's running-maximum frontier routing).
func TestSlicedMatchesSerial(t *testing.T) {
	for name, sc := range batchingScenarios() {
		sc := sc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, slices := range []int{2, 3, 8} {
				got, err := RunSliced(slices, sc)
				if err != nil {
					t.Fatalf("slices=%d: %v", slices, err)
				}
				if got.Report.String() != want.Report.String() {
					t.Errorf("slices=%d: report differs:\n%s\nvs serial:\n%s",
						slices, got.Report, want.Report)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("slices=%d: result differs from serial run", slices)
				}
			}
		})
	}
}

// TestSlicedGoldenCorpus replays the golden regression corpus through
// the sliced path and compares the serialized verdicts byte-for-byte
// against the pinned testdata/golden files: slicing must not disturb a
// single byte of any frozen verdict.
func TestSlicedGoldenCorpus(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunSliced(8, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenMarshal(t, res)
			path := filepath.Join("testdata", "golden", tc.name+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden file: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sliced verdict drifted from %s:\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}

// TestSliceCountDegrades pins the fallback ladder: the streaming
// daemon owns the stream (sequential — one slice), the lane count
// never exceeds the quantum count, and a plain scenario honors the
// request.
func TestSliceCountDegrades(t *testing.T) {
	base := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 3),
		QuantumCycles: testQuantum,
	}
	cfg, err := base.normalize()
	if err != nil {
		t.Fatal(err)
	}

	sc := base
	sc.Slices = 4
	if got := sc.sliceCount(cfg); got != 4 {
		t.Errorf("plain scenario: sliceCount = %d, want 4", got)
	}
	sc.Stream = true
	if got := sc.sliceCount(cfg); got != 1 {
		t.Errorf("streaming scenario: sliceCount = %d, want 1", got)
	}
	sc.Stream = false
	sc.Slices = 10 * cfg.DurationQuanta
	if got := sc.sliceCount(cfg); got > cfg.DurationQuanta {
		t.Errorf("sliceCount = %d exceeds %d quanta", got, cfg.DurationQuanta)
	}

	// Over-requesting lanes must still run and still match serial.
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSliced(1000, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("over-sliced run differs from serial run")
	}
}

// FuzzSlicedEquivalence fuzzes scenario parameters and slice counts
// and asserts the quantum-sliced run is byte-identical to the serial
// single-auditor run — the tentpole's determinism contract under
// adversarial message/seed/channel/lane combinations.
func FuzzSlicedEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0), uint8(2))
	f.Add(uint64(42), uint8(16), uint8(1), uint8(8))
	f.Add(uint64(0xdead), uint8(4), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, bits uint8, channel uint8, slices uint8) {
		nbits := int(bits%12) + 4
		ch := []Channel{ChannelMemoryBus, ChannelIntegerDivider, ChannelSharedCache,
			ChannelRingInterconnect, ChannelTLB}[channel%5]
		sc := Scenario{
			Channel:       ch,
			BandwidthBPS:  1000,
			Message:       RandomMessage(nbits, seed|1),
			QuantumCycles: testQuantum,
			Seed:          seed | 1,
		}
		if ch == ChannelSharedCache {
			sc.CacheSets = 128
			sc.Message = RandomMessage(nbits%8+2, seed|1)
		}
		want, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSliced(int(slices%16)+2, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sliced output differs from serial run "+
				"(seed=%d bits=%d channel=%v slices=%d)", seed, nbits, ch, int(slices%16)+2)
		}
	})
}
