package cchunter

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// streamCases are the golden-corpus scenarios, the same configurations
// TestGoldenVerdicts pins, reused to prove streaming equivalence on
// every channel type plus the benign mix.
func streamCases() []struct {
	name string
	sc   Scenario
} {
	return []struct {
		name string
		sc   Scenario
	}{
		{"bus", Scenario{
			Channel:       ChannelMemoryBus,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 3),
			QuantumCycles: testQuantum,
			Seed:          3,
		}},
		{"divider", Scenario{
			Channel:       ChannelIntegerDivider,
			BandwidthBPS:  1000,
			Message:       RandomMessage(12, 5),
			QuantumCycles: testQuantum,
			Seed:          5,
		}},
		{"cache", Scenario{
			Channel:       ChannelSharedCache,
			BandwidthBPS:  1000,
			Message:       RandomMessage(10, 7),
			CacheSets:     256,
			QuantumCycles: 25_000_000,
			Seed:          7,
		}},
		{"ring", Scenario{
			Channel:       ChannelRingInterconnect,
			BandwidthBPS:  1000,
			Message:       RandomMessage(12, 9),
			QuantumCycles: testQuantum,
			Seed:          9,
		}},
		{"tlb", Scenario{
			Channel:       ChannelTLB,
			BandwidthBPS:  1000,
			Message:       RandomMessage(16, 13),
			QuantumCycles: testQuantum,
			Seed:          13,
		}},
		{"benign", Scenario{
			Channel:        ChannelNone,
			Workloads:      []string{"gobmk", "sjeng", "bzip2", "h264ref"},
			DurationQuanta: 8,
			QuantumCycles:  testQuantum,
		}},
	}
}

// TestStreamingMatchesBatchGolden is the tentpole equivalence gate:
// across the golden corpus, a streaming run's verdict — rendered
// incrementally with bounded memory — must serialize byte-identically
// to the batch verdict once the streaming-only evidence block is
// stripped. The batch side is additionally pinned against the
// committed golden files, so equivalence is anchored to the corpus,
// not merely to whatever the batch path currently produces.
func TestStreamingMatchesBatchGolden(t *testing.T) {
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			batch := tc.sc
			resB, err := batch.Run()
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := goldenMarshal(t, resB)

			streamed := tc.sc
			streamed.Stream = true
			resS, err := streamed.Run()
			if err != nil {
				t.Fatal(err)
			}
			if resS.Report.Streaming == nil {
				t.Fatal("streaming run carries no Streaming info")
			}
			// Only the cache channel reliably fills the conflict train;
			// bus/divider runs may close only empty windows.
			if tc.name == "cache" && resS.Report.Streaming.WindowsAnalyzed == 0 {
				t.Error("streaming cache run analyzed no observation windows")
			}
			resS.Report.Streaming = nil
			gotBytes := goldenMarshal(t, resS)
			if !bytes.Equal(wantBytes, gotBytes) {
				t.Errorf("streaming verdict differs from batch\nbatch:\n%s\nstream:\n%s",
					wantBytes, gotBytes)
			}

			want, err := readGolden(tc.name)
			if err != nil {
				t.Fatalf("read golden file: %v", err)
			}
			if !bytes.Equal(gotBytes, want) {
				t.Errorf("streaming verdict drifted from pinned corpus %s.json", tc.name)
			}
		})
	}
}

func readGolden(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
}

// TestStreamingMatchesBatchUnderFaults repeats the equivalence check
// on a degraded sensor path — dropped events, timestamp jitter,
// context corruption — where the auditor's clamping and dedup logic
// does real work. The streaming drain points must not change what the
// auditor records.
func TestStreamingMatchesBatchUnderFaults(t *testing.T) {
	base := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(16, 11),
		QuantumCycles: testQuantum,
		Seed:          11,
		Faults: FaultConfig{
			DropProb:     0.05,
			JitterCycles: 500,
			ReorderProb:  0.02,
			CtxFlipProb:  0.01,
			Seed:         11,
		},
	}
	batch := base
	resB, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}
	streamed := base
	streamed.Stream = true
	resS, err := streamed.Run()
	if err != nil {
		t.Fatal(err)
	}
	resS.Report.Streaming = nil
	gotB, gotS := goldenMarshal(t, resB), goldenMarshal(t, resS)
	if !bytes.Equal(gotB, gotS) {
		t.Errorf("fault-injected streaming verdict differs from batch\nbatch:\n%s\nstream:\n%s", gotB, gotS)
	}
}

// TestStreamingOnsetReported checks the change detectors surface a
// channel onset on a mid-run covert channel: the trojan stays silent
// for the first startQuanta quanta, so the CUSUM learns a benign
// baseline and then must localize where the likelihood-ratio series
// changed — at or after the channel's actual start, never before the
// alarm, never past the run end.
func TestStreamingOnsetReported(t *testing.T) {
	const startQuanta = 12
	sc := Scenario{
		Channel:            ChannelMemoryBus,
		BandwidthBPS:       1000,
		Message:            RandomMessage(16, 3),
		QuantumCycles:      testQuantum,
		Seed:               3,
		Stream:             true,
		ChannelStartQuanta: startQuanta,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	info := res.Report.Streaming
	if info == nil {
		t.Fatal("no streaming info")
	}
	fired := false
	for _, o := range info.Onsets {
		if !o.Detected {
			continue
		}
		fired = true
		if o.OnsetCycle > o.FiredCycle {
			t.Errorf("%s onset %d after alarm %d", o.Kind, o.OnsetCycle, o.FiredCycle)
		}
		if o.FiredCycle > res.EndCycle {
			t.Errorf("%s alarm at %d beyond run end %d", o.Kind, o.FiredCycle, res.EndCycle)
		}
	}
	if !fired {
		t.Error("delayed bus covert run fired no onset detector")
	}
	if o := res.Report.Onset(EventBusLock); o != nil && o.Detected {
		// The channel was silent before startQuanta; the estimated
		// onset must not point into the benign prefix (one quantum of
		// slack for the slot straddling the boundary).
		if o.OnsetCycle+testQuantum < startQuanta*testQuantum {
			t.Errorf("bus onset %d points into the benign prefix (channel started at %d)",
				o.OnsetCycle, startQuanta*testQuantum)
		}
	}
}

// TestScenarioWatchdogDegraded pins the supervision contract: an
// analysis stage that exceeds its watchdog yields a degraded verdict
// (Failure set, zero confidence, no detection claim) while the run
// itself completes without error.
func TestScenarioWatchdogDegraded(t *testing.T) {
	sc := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 3),
		QuantumCycles: testQuantum,
		Seed:          3,
		Watchdog:      time.Nanosecond, // no analysis finishes in 1ns
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("watchdog overrun must not fail the run: %v", err)
	}
	if !res.Report.Failed() {
		t.Fatal("overrun analysis did not produce a degraded verdict")
	}
	if res.Report.Detected {
		t.Error("degraded verdict claims a detection")
	}
	if res.Report.Confidence != 0 {
		t.Errorf("degraded verdict confidence = %v, want 0", res.Report.Confidence)
	}
}

// TestScenarioWatchdogGenerous checks the complementary case: a
// watchdog wide enough for the analysis leaves the verdict
// byte-identical to an unsupervised run.
func TestScenarioWatchdogGenerous(t *testing.T) {
	base := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(8, 3),
		QuantumCycles: testQuantum,
		Seed:          3,
	}
	resPlain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	guarded := base
	guarded.Watchdog = time.Minute
	resGuarded, err := guarded.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, b := goldenMarshal(t, resPlain), goldenMarshal(t, resGuarded)
	if !bytes.Equal(a, b) {
		t.Error("supervised verdict differs from unsupervised")
	}
}

// TestFlightReplayDeterministic pins the flight recorder: a capture of
// the full run replays to the live verdict, replaying twice gives the
// same bytes, the file roundtrip preserves the flight, and the
// streaming replay agrees with the batch replay.
func TestFlightReplayDeterministic(t *testing.T) {
	sc := Scenario{
		Channel:       ChannelMemoryBus,
		BandwidthBPS:  1000,
		Message:       RandomMessage(16, 3),
		QuantumCycles: testQuantum,
		Seed:          3,
		FlightEvents:  1 << 21, // hold the whole run: replay == live verdict
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flight == nil {
		t.Fatal("armed recorder produced no flight")
	}
	if res.Flight.Truncated {
		t.Fatalf("flight truncated at %d events; raise the test capacity", len(res.Flight.Events))
	}
	if res.Flight.Reason != "detection" {
		t.Errorf("flight reason = %q, want detection", res.Flight.Reason)
	}

	marshal := func(r Report) []byte {
		r.Metrics = nil
		r.Streaming = nil
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	rep1, err := ReplayFlight(*res.Flight)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayFlight(*res.Flight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(rep1), marshal(rep2)) {
		t.Error("two replays of the same flight differ")
	}
	if !bytes.Equal(marshal(rep1), marshal(res.Report)) {
		t.Errorf("replay differs from live verdict\nlive:\n%s\nreplay:\n%s",
			marshal(res.Report), marshal(rep1))
	}

	repS, err := ReplayFlightStreaming(*res.Flight)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Streaming == nil {
		t.Error("streaming replay carries no Streaming info")
	}
	if !bytes.Equal(marshal(repS), marshal(rep1)) {
		t.Error("streaming replay verdict differs from batch replay")
	}

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := res.Flight.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Events) != len(res.Flight.Events) {
		t.Fatalf("roundtrip lost events: %d != %d", len(loaded.Events), len(res.Flight.Events))
	}
	rep3, err := ReplayFlight(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(rep3), marshal(rep1)) {
		t.Error("replay of the roundtripped flight differs")
	}
}
