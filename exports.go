package cchunter

import (
	"net/http"

	"cchunter/internal/auditor"
	"cchunter/internal/core"
	"cchunter/internal/faults"
	"cchunter/internal/obs"
	"cchunter/internal/recorder"
	"cchunter/internal/stats"
	"cchunter/internal/trace"
)

// Aliases re-exporting the analysis and data types that Scenario
// results are made of, so that users of the public API can name them
// without reaching into internal packages.
type (
	// Report is a full CC-Hunter analysis: one verdict per monitored
	// resource plus the overall detection decision.
	Report = core.Report
	// BurstAnalysis is the recurrent-burst detection outcome for one
	// combinational unit (memory bus, integer divider).
	BurstAnalysis = core.BurstAnalysis
	// OscillationAnalysis is the autocorrelation-based detection
	// outcome for the shared cache.
	OscillationAnalysis = core.OscillationAnalysis
	// ContentionVerdict pairs an indicator event kind with its burst
	// analysis.
	ContentionVerdict = core.ContentionVerdict
	// OscillationVerdict aggregates per-window oscillation analyses.
	OscillationVerdict = core.OscillationVerdict
	// BurstConfig tunes recurrent-burst detection.
	BurstConfig = core.BurstConfig
	// OscillationConfig tunes oscillation detection.
	OscillationConfig = core.OscillationConfig
	// Histogram is an event-density histogram.
	Histogram = stats.Histogram
	// QuantumHistogram is one OS-quantum's density histogram.
	QuantumHistogram = auditor.QuantumHistogram
	// CostModel holds the CC-Auditor hardware cost estimates
	// (Table I).
	CostModel = auditor.CostModel
	// Cost is one hardware structure's area/power/latency estimate.
	Cost = auditor.Cost
	// Train is a hardware event train.
	Train = trace.Train
	// Event is a single indicator-event occurrence.
	Event = trace.Event
	// EventKind identifies an indicator event.
	EventKind = trace.Kind
	// Peak is a local maximum in an autocorrelogram.
	Peak = stats.Peak
	// FaultConfig describes a sensor fault injection profile for the
	// event path between the hardware units and the CC-Auditor.
	FaultConfig = faults.Config
	// FaultStats counts what a run's fault injector did to the stream.
	FaultStats = faults.Stats
	// Degradation qualifies a verdict rendered from an imperfect
	// sensor path (loss, saturation, confidence).
	Degradation = core.Degradation
	// MetricsRegistry collects pipeline observability data (counters,
	// gauges, latency histograms) when assigned to Scenario.Metrics.
	// A nil registry disables recording at near-zero cost.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a frozen, JSON-marshalable copy of a
	// MetricsRegistry, attached to Report.Metrics on instrumented runs.
	MetricsSnapshot = obs.Snapshot
	// StreamingInfo is the streaming daemon's evidence block, attached
	// to Report.Streaming on Scenario.Stream runs.
	StreamingInfo = core.StreamingInfo
	// OnsetReport is one CUSUM change detector's channel-onset estimate
	// inside StreamingInfo.
	OnsetReport = core.OnsetReport
	// Flight is a flight-recorder capture: the raw event train around a
	// verdict plus the context needed to replay it deterministically.
	Flight = recorder.Flight
	// FlightMeta is the replay context a Flight carries.
	FlightMeta = recorder.Meta
)

// ReadFlight parses a flight-recorder capture file written by
// Flight.WriteFile (cchunt -record, or Result.Flight serialized).
func ReadFlight(path string) (Flight, error) { return recorder.ReadFile(path) }

// ReplayFlight replays a capture through a freshly built batch
// detection pipeline; the same flight always yields the same report.
func ReplayFlight(f Flight) (Report, error) { return recorder.Replay(f) }

// ReplayFlightStreaming replays a capture through the streaming
// daemon instead, exercising the incremental path; on a complete
// (untruncated) flight the verdict fields match ReplayFlight's.
func ReplayFlightStreaming(f Flight) (Report, error) { return recorder.ReplayStreaming(f) }

// NewMetricsRegistry returns an empty observability registry. Assign
// it to Scenario.Metrics before Run to instrument the pipeline; read
// the snapshot from Result.Report.Metrics afterwards, or serve it live
// with MetricsHandler.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves a registry as JSON over HTTP — the live
// endpoint behind cchunt -metrics-addr. A nil registry serves "{}".
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// ParseFaultSpec parses a comma-separated key=value fault
// specification (e.g. "drop=0.05,jitter=200,seed=7") into a
// FaultConfig; see FaultSpecKeys for the vocabulary.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	return faults.ParseSpec(spec)
}

// FaultSpecKeys lists the keys ParseFaultSpec understands.
func FaultSpecKeys() []string { return faults.SpecKeys() }

// Indicator event kinds.
const (
	EventBusLock        = trace.KindBusLock
	EventDivContention  = trace.KindDivContention
	EventConflictMiss   = trace.KindConflictMiss
	EventRingContention = trace.KindRingContention
	EventTLBConflict    = trace.KindTLBConflict
)

// Paper-calibrated observation windows.
const (
	DeltaTBus     = core.DeltaTBus
	DeltaTDivider = core.DeltaTDivider
	DeltaTRing    = core.DeltaTRing
	DeltaTTLB     = core.DeltaTTLB
)

// EstimateAuditorCost computes the CC-Auditor hardware cost model
// (Table I) for the paper's default sizing.
func EstimateAuditorCost() CostModel {
	return auditor.EstimateCost(auditor.DefaultSizing())
}
